package dlock

import (
	"fmt"

	"munin/internal/cluster"
	"munin/internal/msg"
	"munin/internal/stats"
)

// ---------------------------------------------------------------------
// Barriers
//
// A barrier is homed on one node; arrivals are Calls that the home holds
// open until the last participant arrives, then all replies are released
// at once. A generation counter is unnecessary because a participant
// cannot re-arrive before its own release reply, and replies are sent
// before the next epoch's state is created.

// BarrierWait blocks until n participants (including the caller) have
// arrived at barrier id.
func (s *Service) BarrierWait(id BarrierID, n int) {
	if n <= 0 {
		panic("dlock: barrier needs n >= 1")
	}
	if n == 1 {
		return
	}
	payload := msg.NewBuilder(12).U32(uint32(id)).Int(n).Bytes()
	home := cluster.HomeOf(uint64(id), s.nodes)
	if _, err := s.k.Call(home, kindBarrier, payload); err != nil {
		panic(fmt.Sprintf("dlock: barrier %d: %v", id, err))
	}
}

func (s *Service) handleBarrier(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := BarrierID(r.U32())
	n := r.Int()
	if r.Err() != nil {
		s.k.C.Add(stats.CDlockDropMalformed, 1)
		return
	}
	s.mu.Lock()
	b, ok := s.barriers[id]
	if !ok {
		b = &barrierState{}
		s.barriers[id] = b
	}
	s.mu.Unlock()

	b.mu.Lock()
	b.arrived = append(b.arrived, req)
	if len(b.arrived) < n {
		b.mu.Unlock()
		return
	}
	waiters := b.arrived
	b.arrived = nil
	b.mu.Unlock()
	for _, w := range waiters {
		s.k.Reply(w, nil)
	}
}

// ---------------------------------------------------------------------
// Atomic integers (paper §3.3.8: "more elaborate synchronization
// objects, such as monitors and atomic integers, are built on top").
// Each atomic lives at its home node; operations are single round trips.

// FetchAdd atomically adds delta to atomic id and returns the previous
// value.
func (s *Service) FetchAdd(id AtomicID, delta int64) int64 {
	payload := msg.NewBuilder(12).U32(uint32(id)).I64(delta).Bytes()
	home := cluster.HomeOf(uint64(id), s.nodes)
	reply, err := s.k.Call(home, kindFetchAdd, payload)
	if err != nil {
		panic(fmt.Sprintf("dlock: fetchadd %d: %v", id, err))
	}
	return msg.NewReader(reply.Payload).I64()
}

// AtomicLoad returns the current value of atomic id.
func (s *Service) AtomicLoad(id AtomicID) int64 {
	payload := msg.NewBuilder(4).U32(uint32(id)).Bytes()
	home := cluster.HomeOf(uint64(id), s.nodes)
	reply, err := s.k.Call(home, kindAtomLoad, payload)
	if err != nil {
		panic(fmt.Sprintf("dlock: atomic load %d: %v", id, err))
	}
	return msg.NewReader(reply.Payload).I64()
}

func (s *Service) atomicState(id AtomicID) *atomicState {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.atomics[id]
	if !ok {
		a = &atomicState{}
		s.atomics[id] = a
	}
	return a
}

func (s *Service) handleFetchAdd(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := AtomicID(r.U32())
	delta := r.I64()
	if r.Err() != nil {
		s.k.C.Add(stats.CDlockDropMalformed, 1)
		return
	}
	a := s.atomicState(id)
	a.mu.Lock()
	old := a.v
	a.v += delta
	a.mu.Unlock()
	s.k.Reply(req, msg.NewBuilder(8).I64(old).Bytes())
}

func (s *Service) handleAtomLoad(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := AtomicID(r.U32())
	if r.Err() != nil {
		s.k.C.Add(stats.CDlockDropMalformed, 1)
		return
	}
	a := s.atomicState(id)
	a.mu.Lock()
	v := a.v
	a.mu.Unlock()
	s.k.Reply(req, msg.NewBuilder(8).I64(v).Bytes())
}

// ---------------------------------------------------------------------
// Condition variables
//
// Wait must atomically (with respect to Signal) register the waiter
// before releasing the associated lock, or a wakeup between release and
// block would be lost. The two-phase protocol does exactly that:
//
//	ticket = Call(home, REG)        // registered; signals now find us
//	Release(lock)
//	Call(home, WAIT{ticket})        // blocks until a signal claims ticket
//	Acquire(lock)                   // Mesa semantics: re-contend
//
// A signal that arrives between REG and WAIT marks the ticket signaled;
// the WAIT call then returns immediately.

func (s *Service) condState(id CondID) *condState {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.conds[id]
	if !ok {
		c = &condState{waiters: make(map[uint64]*msg.Msg), signaled: make(map[uint64]bool)}
		s.conds[id] = c
	}
	return c
}

// CondWait releases lock and blocks the caller until cond is signaled,
// then reacquires lock before returning (Mesa monitor semantics). The
// caller must hold lock.
func (s *Service) CondWait(cond CondID, lock LockID) {
	home := cluster.HomeOf(uint64(cond), s.nodes)
	reg, err := s.k.Call(home, kindCondReg, msg.NewBuilder(4).U32(uint32(cond)).Bytes())
	if err != nil {
		panic(fmt.Sprintf("dlock: cond %d reg: %v", cond, err))
	}
	ticket := msg.NewReader(reg.Payload).U64()

	s.Release(lock)

	payload := msg.NewBuilder(12).U32(uint32(cond)).U64(ticket).Bytes()
	if _, err := s.k.Call(home, kindCondWait, payload); err != nil {
		panic(fmt.Sprintf("dlock: cond %d wait: %v", cond, err))
	}
	s.Acquire(lock)
}

// CondSignal wakes at most one waiter on cond.
func (s *Service) CondSignal(cond CondID) { s.condSignal(cond, false) }

// CondBroadcast wakes every current waiter on cond.
func (s *Service) CondBroadcast(cond CondID) { s.condSignal(cond, true) }

func (s *Service) condSignal(cond CondID, all bool) {
	home := cluster.HomeOf(uint64(cond), s.nodes)
	payload := msg.NewBuilder(5).U32(uint32(cond)).Bool(all).Bytes()
	if _, err := s.k.Call(home, kindCondSig, payload); err != nil {
		panic(fmt.Sprintf("dlock: cond %d signal: %v", cond, err))
	}
}

func (s *Service) handleCondReg(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := CondID(r.U32())
	if r.Err() != nil {
		s.k.C.Add(stats.CDlockDropMalformed, 1)
		return
	}
	c := s.condState(id)
	c.mu.Lock()
	c.nextTkt++
	tkt := c.nextTkt
	c.waiters[tkt] = nil // registered, not yet blocked
	c.mu.Unlock()
	s.k.Reply(req, msg.NewBuilder(8).U64(tkt).Bytes())
}

func (s *Service) handleCondWait(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := CondID(r.U32())
	tkt := r.U64()
	if r.Err() != nil {
		s.k.C.Add(stats.CDlockDropMalformed, 1)
		return
	}
	c := s.condState(id)
	c.mu.Lock()
	if c.signaled[tkt] {
		delete(c.signaled, tkt)
		delete(c.waiters, tkt)
		c.mu.Unlock()
		s.k.Reply(req, nil)
		return
	}
	c.waiters[tkt] = req
	c.mu.Unlock()
}

func (s *Service) handleCondSig(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := CondID(r.U32())
	all := r.Bool()
	if r.Err() != nil {
		s.k.C.Add(stats.CDlockDropMalformed, 1)
		return
	}
	c := s.condState(id)
	c.mu.Lock()
	var wake []*msg.Msg
	for tkt, blocked := range c.waiters {
		if blocked == nil {
			// Registered but not yet blocked: mark signaled so the
			// WAIT call returns immediately when it arrives.
			c.signaled[tkt] = true
			delete(c.waiters, tkt)
		} else {
			wake = append(wake, blocked)
			delete(c.waiters, tkt)
		}
		if !all {
			break
		}
	}
	c.mu.Unlock()
	for _, w := range wake {
		s.k.Reply(w, nil)
	}
	s.k.Reply(req, nil)
}

// ---------------------------------------------------------------------
// Monitors (Mesa-style, as provided by Presto and named in §3.3.8).

// Monitor couples a lock with a condition variable to provide Mesa-style
// monitor semantics over the distributed lock service.
type Monitor struct {
	s    *Service
	lock LockID
	cond CondID
}

// NewMonitor creates a monitor view backed by this node's service. The
// (lock, cond) pair must be the same on every node using the monitor.
func (s *Service) NewMonitor(lock LockID, cond CondID) *Monitor {
	return &Monitor{s: s, lock: lock, cond: cond}
}

// Enter enters the monitor (acquires its lock).
func (m *Monitor) Enter() { m.s.Acquire(m.lock) }

// Exit leaves the monitor (releases its lock).
func (m *Monitor) Exit() { m.s.Release(m.lock) }

// Wait blocks on the monitor's condition, releasing and reacquiring the
// monitor lock around the wait (Mesa semantics: recheck the predicate).
func (m *Monitor) Wait() { m.s.CondWait(m.cond, m.lock) }

// Signal wakes one waiter.
func (m *Monitor) Signal() { m.s.CondSignal(m.cond) }

// Broadcast wakes all waiters.
func (m *Monitor) Broadcast() { m.s.CondBroadcast(m.cond) }
