package dlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"munin/internal/cluster"
	"munin/internal/msg"
)

// harness builds an n-node cluster with a lock service on every node.
func harness(t *testing.T, n int) (*cluster.Cluster, []*Service) {
	t.Helper()
	c, err := cluster.New(cluster.Config{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	svcs := make([]*Service, n)
	for i := 0; i < n; i++ {
		svcs[i] = NewService(c.Kernel(msg.NodeID(i)))
	}
	t.Cleanup(c.Close)
	return c, svcs
}

func TestAcquireReleaseSingleNode(t *testing.T) {
	_, svcs := harness(t, 1)
	svcs[0].Acquire(1)
	svcs[0].Release(1)
	svcs[0].Acquire(1)
	svcs[0].Release(1)
}

func TestMutualExclusionAcrossNodes(t *testing.T) {
	_, svcs := harness(t, 4)
	const lock = LockID(5)
	var inCS atomic.Int32
	var violations atomic.Int32
	var total atomic.Int64
	var wg sync.WaitGroup
	for n := 0; n < 4; n++ {
		for th := 0; th < 2; th++ {
			wg.Add(1)
			go func(s *Service) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					s.Acquire(lock)
					if inCS.Add(1) != 1 {
						violations.Add(1)
					}
					total.Add(1)
					inCS.Add(-1)
					s.Release(lock)
				}
			}(svcs[n])
		}
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutual exclusion violations", violations.Load())
	}
	if total.Load() != 4*2*50 {
		t.Fatalf("total = %d", total.Load())
	}
}

func TestProxyLocalReacquisitionCostsNothing(t *testing.T) {
	c, svcs := harness(t, 2)
	const lock = LockID(0) // homed on node 0
	// Node 1 acquires once (remote), then re-acquires many times.
	svcs[1].Acquire(lock)
	svcs[1].Release(lock)
	before := c.Stats().Messages()
	for i := 0; i < 100; i++ {
		svcs[1].Acquire(lock)
		svcs[1].Release(lock)
	}
	if got := c.Stats().Messages(); got != before {
		t.Fatalf("local reacquisition sent %d messages, want 0", got-before)
	}
	if svcs[1].LocalAcquires() != 100 {
		t.Fatalf("localAcquires = %d, want 100", svcs[1].LocalAcquires())
	}
	if svcs[1].RemoteAcquires() != 1 {
		t.Fatalf("remoteAcquires = %d, want 1", svcs[1].RemoteAcquires())
	}
}

func TestNaiveModeAlwaysSurrenders(t *testing.T) {
	c, svcs := harness(t, 2)
	const lock = LockID(0)
	svcs[1].SetNaive(true)
	svcs[1].Acquire(lock)
	svcs[1].Release(lock)
	before := c.Stats().Messages()
	svcs[1].Acquire(lock)
	svcs[1].Release(lock)
	if got := c.Stats().Messages() - before; got == 0 {
		t.Fatal("naive mode sent no messages on reacquisition")
	}
}

func TestOwnershipTransfersOnContention(t *testing.T) {
	_, svcs := harness(t, 3)
	const lock = LockID(7)
	order := make(chan int, 3)
	var wg sync.WaitGroup
	svcs[0].Acquire(lock)
	for n := 1; n < 3; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			svcs[n].Acquire(lock)
			order <- n
			svcs[n].Release(lock)
		}(n)
	}
	time.Sleep(50 * time.Millisecond) // let both queue at home
	order <- 0
	svcs[0].Release(lock)
	wg.Wait()
	close(order)
	var got []int
	for n := range order {
		got = append(got, n)
	}
	if len(got) != 3 || got[0] != 0 {
		t.Fatalf("order = %v", got)
	}
}

func TestMigratoryDataTravelsWithLock(t *testing.T) {
	_, svcs := harness(t, 3)
	const lock = LockID(2) // homed on node 2
	// Each node keeps a local "copy" of a counter; the authoritative
	// bytes ride with the lock.
	locals := make([][]byte, 3)
	for i := range locals {
		locals[i] = []byte{0}
		i := i
		svcs[i].AttachMigratory(lock,
			func() []byte { return locals[i] },
			func(b []byte) { locals[i] = append([]byte(nil), b...) })
	}
	if err := svcs[0].SeedMigratory(lock, []byte{10}); err != nil {
		t.Fatal(err)
	}
	// Ring: each node increments the value 5 times.
	for round := 0; round < 5; round++ {
		for n := 0; n < 3; n++ {
			svcs[n].Acquire(lock)
			locals[n][0]++
			svcs[n].Release(lock)
		}
	}
	svcs[1].Acquire(lock)
	if locals[1][0] != 10+15 {
		t.Fatalf("migratory value = %d, want 25", locals[1][0])
	}
	svcs[1].Release(lock)
}

func TestSeedMigratoryAtHomeItself(t *testing.T) {
	_, svcs := harness(t, 2)
	const lock = LockID(0) // home = node 0
	var got []byte
	svcs[1].AttachMigratory(lock, func() []byte { return got },
		func(b []byte) { got = append([]byte(nil), b...) })
	if err := svcs[0].SeedMigratory(lock, []byte("seeded")); err != nil {
		t.Fatal(err)
	}
	svcs[1].Acquire(lock)
	if string(got) != "seeded" {
		t.Fatalf("got %q", got)
	}
	svcs[1].Release(lock)
}

func TestReleaseWithoutHoldPanics(t *testing.T) {
	_, svcs := harness(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	svcs[0].Release(3)
}

func TestBarrier(t *testing.T) {
	_, svcs := harness(t, 4)
	var phase atomic.Int32
	var wrong atomic.Int32
	var wg sync.WaitGroup
	for n := 0; n < 4; n++ {
		wg.Add(1)
		go func(s *Service) {
			defer wg.Done()
			phase.Add(1)
			s.BarrierWait(9, 4)
			// After the barrier, all 4 must have incremented.
			if phase.Load() != 4 {
				wrong.Add(1)
			}
		}(svcs[n])
	}
	wg.Wait()
	if wrong.Load() != 0 {
		t.Fatalf("%d threads passed the barrier early", wrong.Load())
	}
}

func TestBarrierReusableAcrossEpochs(t *testing.T) {
	_, svcs := harness(t, 2)
	var counter atomic.Int64
	var bad atomic.Int32
	var wg sync.WaitGroup
	for n := 0; n < 2; n++ {
		wg.Add(1)
		go func(s *Service) {
			defer wg.Done()
			for epoch := int64(1); epoch <= 10; epoch++ {
				counter.Add(1)
				s.BarrierWait(1, 2)
				if counter.Load() != 2*epoch {
					bad.Add(1)
				}
				s.BarrierWait(2, 2) // second barrier prevents epoch overlap
			}
		}(svcs[n])
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d epoch violations", bad.Load())
	}
}

func TestBarrierSingleParticipantIsFree(t *testing.T) {
	c, svcs := harness(t, 2)
	before := c.Stats().Messages()
	svcs[0].BarrierWait(5, 1)
	if c.Stats().Messages() != before {
		t.Fatal("1-party barrier sent messages")
	}
}

func TestFetchAddLinearizes(t *testing.T) {
	_, svcs := harness(t, 4)
	const id = AtomicID(3)
	seen := make([]atomic.Bool, 4*25)
	var wg sync.WaitGroup
	for n := 0; n < 4; n++ {
		wg.Add(1)
		go func(s *Service) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				old := s.FetchAdd(id, 1)
				if old < 0 || old >= int64(len(seen)) || seen[old].Swap(true) {
					t.Errorf("duplicate or out-of-range ticket %d", old)
					return
				}
			}
		}(svcs[n])
	}
	wg.Wait()
	if got := svcs[2].AtomicLoad(id); got != 100 {
		t.Fatalf("final = %d, want 100", got)
	}
}

func TestCondSignalWakesWaiter(t *testing.T) {
	_, svcs := harness(t, 2)
	const lock, cond = LockID(4), CondID(8)
	ready := make(chan struct{})
	done := make(chan struct{})
	go func() {
		svcs[1].Acquire(lock)
		close(ready)
		svcs[1].CondWait(cond, lock)
		svcs[1].Release(lock)
		close(done)
	}()
	<-ready
	// Signal until the waiter is actually woken (Mesa semantics allow
	// a signal to arrive before the waiter blocks; our two-phase
	// protocol stores it, so one signal after registration suffices —
	// but we must wait for registration, hence the loop).
	for {
		svcs[0].Acquire(lock)
		svcs[0].CondSignal(cond)
		svcs[0].Release(lock)
		select {
		case <-done:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestCondBroadcast(t *testing.T) {
	_, svcs := harness(t, 3)
	const lock, cond = LockID(6), CondID(2)
	var woke atomic.Int32
	var wg sync.WaitGroup
	started := make(chan struct{}, 3)
	for n := 0; n < 3; n++ {
		wg.Add(1)
		go func(s *Service) {
			defer wg.Done()
			s.Acquire(lock)
			started <- struct{}{}
			s.CondWait(cond, lock)
			woke.Add(1)
			s.Release(lock)
		}(svcs[n])
	}
	for i := 0; i < 3; i++ {
		<-started
	}
	// All three have registered + released the lock once they block;
	// broadcast repeatedly until all wake (guards the register/block gap).
	for woke.Load() < 3 {
		svcs[0].CondBroadcast(cond)
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
}

func TestMonitorProducesConsumes(t *testing.T) {
	_, svcs := harness(t, 2)
	mon0 := svcs[0].NewMonitor(10, 10)
	mon1 := svcs[1].NewMonitor(10, 10)
	var queue atomic.Int32 // stands in for shared state guarded by the monitor

	done := make(chan struct{})
	go func() {
		mon1.Enter()
		for queue.Load() == 0 {
			mon1.Wait()
		}
		queue.Add(-1)
		mon1.Exit()
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	mon0.Enter()
	queue.Add(1)
	mon0.Broadcast()
	mon0.Exit()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never woke")
	}
}

func TestLockStatsCounters(t *testing.T) {
	_, svcs := harness(t, 2)
	svcs[0].Acquire(1) // lock 1 homed on node 1 → remote
	svcs[0].Release(1)
	svcs[0].Acquire(1)
	svcs[0].Release(1)
	if svcs[0].RemoteAcquires() != 1 || svcs[0].LocalAcquires() != 1 {
		t.Fatalf("remote=%d local=%d", svcs[0].RemoteAcquires(), svcs[0].LocalAcquires())
	}
}
