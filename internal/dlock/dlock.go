// Package dlock implements Munin's distributed synchronization substrate
// (paper §3.3.8): distributed locks built from per-node lock servers and
// local proxy objects, plus barriers, atomic integers, condition
// variables and Mesa-style monitors layered on top.
//
// # Protocol
//
// Every lock has a home node (HomeOf(id)). The home holds the lock's
// global state: which node currently owns it and a FIFO queue of nodes
// waiting for ownership. Each node runs a Service holding one proxy per
// lock it has touched. Threads always operate on the local proxy:
//
//   - If the node already owns the lock and no local thread holds it,
//     acquisition is purely local — zero messages. This is the proxy
//     benefit the paper describes.
//   - Otherwise the first local waiter issues an ACQUIRE call to the
//     home; the reply *is* the ownership grant (the caller stays
//     suspended in the V-kernel Call until granted).
//   - The home RECALLs the lock from the owning node when other nodes
//     queue. The owner surrenders ownership (RELEASE to home) once its
//     local holder lets go; the home then grants to the head of the
//     queue. Remote waiters take priority over local re-acquisition once
//     a recall has arrived, which keeps transfers FIFO at the home and
//     prevents remote starvation.
//
// # Migratory data
//
// Grant and release messages carry an opaque data payload. The migratory
// coherence protocol (paper §3.3.3) registers a provider/applier pair on
// the proxy, so the migratory objects guarded by a lock travel inside
// the lock-transfer messages themselves — "the object is migrated,
// together with the lock itself, to the next thread in the lock queue."
package dlock

import (
	"fmt"
	"sync"

	"munin/internal/cluster"
	"munin/internal/failpoint"
	"munin/internal/msg"
	"munin/internal/stats"
	"munin/internal/vkernel"
)

// LockID identifies a distributed lock.
type LockID uint32

// BarrierID identifies a distributed barrier.
type BarrierID uint32

// AtomicID identifies a distributed atomic integer.
type AtomicID uint32

// CondID identifies a distributed condition variable.
type CondID uint32

// Message kinds used by the lock service.
const (
	kindAcquire  = msg.KindLockBase + 0 // Call: request ownership; reply = grant(+data)
	kindRelease  = msg.KindLockBase + 1 // Send: surrender ownership to home (+data)
	kindRecall   = msg.KindLockBase + 2 // Send: home asks owner to surrender
	kindSeed     = msg.KindLockBase + 3 // Call: seed migratory data at home
	kindBarrier  = msg.KindLockBase + 4 // Call: arrive at barrier; reply = release
	kindFetchAdd = msg.KindLockBase + 5 // Call: atomic fetch-and-add
	kindAtomLoad = msg.KindLockBase + 6 // Call: atomic load
	kindCondWait = msg.KindLockBase + 7 // Call: block until signaled (pre-registered)
	kindCondReg  = msg.KindLockBase + 8 // Call: register waiter, returns ticket
	kindCondSig  = msg.KindLockBase + 9 // Call: signal/broadcast
)

// kindLockMax is the top of the range this service registers.
const kindLockMax = msg.KindLockBase + 0x0f

// Service is one node's lock server plus its proxy table.
type Service struct {
	k     *vkernel.Kernel
	nodes int

	mu      sync.Mutex
	proxies map[LockID]*proxy
	homes   map[LockID]*homeState // state for locks homed on this node

	barriers map[BarrierID]*barrierState
	atomics  map[AtomicID]*atomicState
	conds    map[CondID]*condState

	// naive disables proxy ownership caching: every release surrenders
	// the lock to the home. Used by the E8 experiment as the baseline.
	naive bool

	// LocalAcquires counts acquisitions satisfied with zero messages.
	localAcquires int64
	// RemoteAcquires counts acquisitions that needed a home round trip.
	remoteAcquires int64
}

// proxy is the local representative of one distributed lock.
type proxy struct {
	mu   sync.Mutex
	cond *sync.Cond

	owner      bool // this node holds global ownership
	held       bool // a local thread holds the lock
	requesting bool // an ACQUIRE call is in flight
	recall     bool // home asked us to surrender

	// Migratory data hooks (nil when no data is attached to the lock).
	provide func() []byte
	apply   func([]byte)
}

// homeState is the global state of a lock homed on this node.
type homeState struct {
	mu     sync.Mutex
	owned  bool
	owner  msg.NodeID
	queue  []pendingGrant
	stored []byte // migratory data parked at home while unowned
}

type pendingGrant struct {
	node msg.NodeID
	req  *msg.Msg // pending ACQUIRE call to reply to
}

type barrierState struct {
	mu      sync.Mutex
	arrived []*msg.Msg
}

type atomicState struct {
	mu sync.Mutex
	v  int64
}

type condState struct {
	mu      sync.Mutex
	nextTkt uint64
	// waiters maps ticket -> pending CondWait request (nil until the
	// waiter blocks) ; signaled tickets are removed when both the
	// signal and the block have arrived.
	waiters  map[uint64]*msg.Msg
	signaled map[uint64]bool
}

// NewService creates node-local lock service state and registers its
// message handlers on k. One Service must be created per node before any
// lock traffic flows.
func NewService(k *vkernel.Kernel) *Service {
	s := &Service{
		k:        k,
		nodes:    k.Nodes(),
		proxies:  make(map[LockID]*proxy),
		homes:    make(map[LockID]*homeState),
		barriers: make(map[BarrierID]*barrierState),
		atomics:  make(map[AtomicID]*atomicState),
		conds:    make(map[CondID]*condState),
	}
	k.Handle(msg.KindLockBase, kindLockMax, s.dispatch)
	return s
}

// SetNaive disables local ownership caching (the proxy optimization).
// With naive=true every acquire/release pair costs a home round trip,
// which is the baseline the paper's proxy design improves on.
func (s *Service) SetNaive(naive bool) {
	s.mu.Lock()
	s.naive = naive
	s.mu.Unlock()
}

// LocalAcquires returns the number of lock acquisitions this node
// satisfied without any network traffic.
func (s *Service) LocalAcquires() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.localAcquires
}

// RemoteAcquires returns the number of lock acquisitions that required a
// home round trip.
func (s *Service) RemoteAcquires() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remoteAcquires
}

func (s *Service) home(id LockID) msg.NodeID {
	return cluster.HomeOf(uint64(id), s.nodes)
}

func (s *Service) proxy(id LockID) *proxy {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.proxies[id]
	if !ok {
		p = &proxy{}
		p.cond = sync.NewCond(&p.mu)
		s.proxies[id] = p
	}
	return p
}

func (s *Service) homeState(id LockID) *homeState {
	if s.home(id) != s.k.Node() {
		panic(fmt.Sprintf("dlock: node %d is not home of lock %d", s.k.Node(), id))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.homes[id]
	if !ok {
		h = &homeState{}
		s.homes[id] = h
	}
	return h
}

// AttachMigratory registers the migratory-data hooks for a lock on this
// node: provide is called when ownership leaves this node (its bytes ride
// in the release message); apply is called with the bytes that arrived in
// an ownership grant.
func (s *Service) AttachMigratory(id LockID, provide func() []byte, apply func([]byte)) {
	p := s.proxy(id)
	p.mu.Lock()
	p.provide = provide
	p.apply = apply
	p.mu.Unlock()
}

// SeedMigratory parks initial migratory data for lock id at its home so
// the first grant anywhere delivers it. Call once, before use.
func (s *Service) SeedMigratory(id LockID, data []byte) error {
	b := encodeLockPayload(uint32(id), data)
	if s.home(id) == s.k.Node() {
		h := s.homeState(id)
		h.mu.Lock()
		h.stored = append([]byte(nil), data...)
		h.mu.Unlock()
		return nil
	}
	_, err := s.k.Call(s.home(id), kindSeed, b)
	return err
}

// Acquire blocks the calling thread until it holds lock id.
func (s *Service) Acquire(id LockID) {
	p := s.proxy(id)
	wasRemote := false
	p.mu.Lock()
	for {
		if p.owner && !p.held {
			// Local (zero-message) acquisition. A pending recall does
			// not block this acquisition: the node is allowed to enter
			// the critical section once more, and Release will then
			// surrender ownership to the home. (Surrendering here
			// instead would bounce a fresh grant away before the
			// granted thread ever ran, since the home recalls
			// eagerly when more waiters are queued behind a grant.)
			p.held = true
			p.mu.Unlock()
			s.mu.Lock()
			if wasRemote {
				s.remoteAcquires++
			} else {
				s.localAcquires++
			}
			s.mu.Unlock()
			// The lock is held: the member is inside the critical
			// section.
			failpoint.Hit(failpoint.LockHeld)
			return
		}
		if p.owner && p.held {
			p.cond.Wait()
			continue
		}
		// Not owner.
		if !p.requesting {
			p.requesting = true
			p.mu.Unlock()

			reply, err := s.k.Call(s.home(id), kindAcquire, encodeLockPayload(uint32(id), nil))
			if err != nil {
				p.mu.Lock()
				p.requesting = false
				p.cond.Broadcast()
				panic(fmt.Sprintf("dlock: acquire lock %d: %v", id, err))
			}
			_, data := decodeLockPayload(reply.Payload)
			// The home's grant has arrived but ownership is not yet
			// recorded: a member dying here leaves the home believing
			// it owns the lock.
			failpoint.Hit(failpoint.LockGranted)

			p.mu.Lock()
			p.owner = true
			p.requesting = false
			wasRemote = true
			if p.apply != nil && data != nil {
				p.apply(data)
			}
			p.cond.Broadcast()
			continue // loop: grab it (we might race another local thread)
		}
		p.cond.Wait()
	}
}

// Release releases lock id, previously acquired by this thread's node.
func (s *Service) Release(id LockID) {
	p := s.proxy(id)
	p.mu.Lock()
	if !p.held || !p.owner {
		p.mu.Unlock()
		panic(fmt.Sprintf("dlock: release of lock %d not held by node %d", id, s.k.Node()))
	}
	p.held = false
	s.mu.Lock()
	naive := s.naive
	s.mu.Unlock()
	if p.recall || naive {
		s.surrenderLocked(id, p)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// surrenderLocked gives global ownership back to the home. Caller holds
// p.mu; the proxy must be owner with the lock free.
func (s *Service) surrenderLocked(id LockID, p *proxy) {
	p.owner = false
	p.recall = false
	var data []byte
	if p.provide != nil {
		data = p.provide()
	}
	payload := encodeLockPayload(uint32(id), data)
	// Send outside the proxy lock would be nicer, but the one-way send
	// never blocks on the remote side (unbounded queues), so holding
	// p.mu here cannot deadlock.
	if err := s.k.Send(s.home(id), kindRelease, payload); err != nil {
		panic(fmt.Sprintf("dlock: release lock %d: %v", id, err))
	}
}

// PeerGone prunes a cleanly departed member from this node's home-side
// lock state: its queued ACQUIRE requests are dropped (the waiter's
// process is gone; granting to it would only pay a failed send), and a
// lock it still owned is released — granted to the next queued waiter,
// or parked unowned — so the remaining members are not deadlocked
// behind an owner that will never surrender. A migratory payload the
// departed owner held is lost with it (clean departure while holding a
// lock is a program error; this keeps the failure local to that lock).
//
// The runtime calls this when the transport reports a goodbye
// (transport.PeerGoneNotifier), strictly after everything the peer sent
// — including any final RELEASE — has been dispatched, so only state
// the peer genuinely abandoned is pruned. Barrier arrivals are left
// untouched: an arrival that already counted keeps counting (the
// release reply to the departed member fails once, harmlessly).
//
// Counters (on the kernel's set): dlock.gone_dequeued (queued grants
// dropped), dlock.gone_owner (owned locks force-released).
func (s *Service) PeerGone(peer msg.NodeID) {
	dequeued, released := s.resetPeer(peer)
	if dequeued > 0 {
		s.k.C.Add(stats.CDlockGoneDequeued, dequeued)
	}
	if released > 0 {
		s.k.C.Add(stats.CDlockGoneOwner, released)
	}
}

// PeerRecovered rebuilds this home's lock state for a peer whose
// restarted incarnation is rejoining (protocol recovery): the dead
// incarnation's queued grant requests are dropped — their pending
// calls died with its connection — and a lock it still held is
// force-released to the next waiter, exactly like a departing owner's.
// The fresh incarnation re-enters queues via ordinary acquires.
//
// Counters: dlock.recover_dequeued, dlock.recover_owner.
func (s *Service) PeerRecovered(peer msg.NodeID) {
	dequeued, released := s.resetPeer(peer)
	if dequeued > 0 {
		s.k.C.Add(stats.CDlockRecoverDequeued, dequeued)
	}
	if released > 0 {
		s.k.C.Add(stats.CDlockRecoverOwner, released)
	}
}

// resetPeer drops peer from every lock queue this node homes and
// force-releases any lock peer owned, granting it to the next queued
// waiter. Shared by PeerGone (clean departure) and PeerRecovered
// (crashed incarnation rejoining).
func (s *Service) resetPeer(peer msg.NodeID) (dequeued, released int64) {
	s.mu.Lock()
	type idHome struct {
		id LockID
		h  *homeState
	}
	homes := make([]idHome, 0, len(s.homes))
	for id, h := range s.homes {
		homes = append(homes, idHome{id, h})
	}
	s.mu.Unlock()

	for _, ih := range homes {
		h := ih.h
		h.mu.Lock()
		kept := h.queue[:0]
		for _, pg := range h.queue {
			if pg.node == peer {
				dequeued++
				continue
			}
			kept = append(kept, pg)
		}
		h.queue = kept
		var next *pendingGrant
		moreWaiters := false
		if h.owned && h.owner == peer {
			released++
			if len(h.queue) > 0 {
				pg := h.queue[0]
				h.queue = h.queue[1:]
				h.owner = pg.node
				moreWaiters = len(h.queue) > 0
				next = &pg
			} else {
				h.owned = false
				h.stored = nil // the owner's migratory payload left with it
			}
		}
		h.mu.Unlock()
		if next != nil {
			// Grant with no data: the departed owner never provided its
			// release payload.
			s.k.Reply(next.req, encodeLockPayload(uint32(ih.id), nil))
			if moreWaiters {
				s.k.Send(next.node, kindRecall, encodeLockPayload(uint32(ih.id), nil))
			}
		}
	}
	return dequeued, released
}

// dispatch routes lock-service messages.
func (s *Service) dispatch(k *vkernel.Kernel, req *msg.Msg) {
	switch req.Kind {
	case kindAcquire:
		s.handleAcquire(req)
	case kindRelease:
		s.handleRelease(req)
	case kindRecall:
		s.handleRecall(req)
	case kindSeed:
		s.handleSeed(req)
	case kindBarrier:
		s.handleBarrier(req)
	case kindFetchAdd:
		s.handleFetchAdd(req)
	case kindAtomLoad:
		s.handleAtomLoad(req)
	case kindCondReg:
		s.handleCondReg(req)
	case kindCondWait:
		s.handleCondWait(req)
	case kindCondSig:
		s.handleCondSig(req)
	}
}

func (s *Service) handleAcquire(req *msg.Msg) {
	id, _ := decodeLockPayload(req.Payload)
	h := s.homeState(LockID(id))
	h.mu.Lock()
	if !h.owned {
		h.owned = true
		h.owner = req.From
		data := h.stored
		h.stored = nil
		h.mu.Unlock()
		s.k.Reply(req, encodeLockPayload(id, data))
		return
	}
	h.queue = append(h.queue, pendingGrant{node: req.From, req: req})
	needRecall := len(h.queue) == 1
	owner := h.owner
	h.mu.Unlock()
	if needRecall {
		s.k.Send(owner, kindRecall, encodeLockPayload(id, nil))
	}
}

func (s *Service) handleRelease(req *msg.Msg) {
	id, data := decodeLockPayload(req.Payload)
	h := s.homeState(LockID(id))
	h.mu.Lock()
	if len(h.queue) == 0 {
		h.owned = false
		h.stored = append([]byte(nil), data...)
		h.mu.Unlock()
		return
	}
	next := h.queue[0]
	h.queue = h.queue[1:]
	h.owner = next.node
	moreWaiters := len(h.queue) > 0
	h.mu.Unlock()
	// Grant: the reply to the waiter's pending ACQUIRE call, carrying
	// the migratory data that rode in on the release.
	s.k.Reply(next.req, encodeLockPayload(id, data))
	if moreWaiters {
		s.k.Send(next.node, kindRecall, encodeLockPayload(id, nil))
	}
}

func (s *Service) handleRecall(req *msg.Msg) {
	id, _ := decodeLockPayload(req.Payload)
	p := s.proxy(LockID(id))
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.owner && !p.held {
		// Free right now: surrender immediately.
		s.surrenderLocked(LockID(id), p)
		p.cond.Broadcast()
		return
	}
	// Held (or ownership still in flight): mark; Release/Acquire will
	// honor it.
	p.recall = true
}

func (s *Service) handleSeed(req *msg.Msg) {
	id, data := decodeLockPayload(req.Payload)
	h := s.homeState(LockID(id))
	h.mu.Lock()
	h.stored = append([]byte(nil), data...)
	h.mu.Unlock()
	s.k.Reply(req, nil)
}

// encodeLockPayload packs (lockID, data) for the wire. data == nil means
// "no data"; an empty non-nil slice is preserved as empty.
func encodeLockPayload(id uint32, data []byte) []byte {
	b := msg.NewBuilder(8 + len(data))
	b.U32(id)
	if data == nil {
		b.Bool(false)
	} else {
		b.Bool(true)
		b.BytesN(data)
	}
	return b.Bytes()
}

func decodeLockPayload(p []byte) (id uint32, data []byte) {
	r := msg.NewReader(p)
	id = r.U32()
	if r.Bool() {
		data = append([]byte(nil), r.BytesN()...)
		if data == nil {
			data = []byte{}
		}
	}
	if r.Err() != nil {
		panic(fmt.Sprintf("dlock: corrupt payload: %v", r.Err()))
	}
	return id, data
}
