package munin

import (
	"testing"

	"munin/internal/apps"
	"munin/internal/bench"
)

// One benchmark per experiment in DESIGN.md §4. Each reports the
// traffic the experiment measured as custom metrics (msgs/op,
// KB/op-net) alongside wall time; the experiment tables themselves are
// printed by cmd/munin-bench.

func benchResult(b *testing.B, run func(nodes int) *bench.Result, nodes int) {
	b.ReportAllocs()
	var last *bench.Result
	for i := 0; i < b.N; i++ {
		last = run(nodes)
	}
	if last != nil {
		for k, v := range last.Metrics {
			_ = k
			_ = v
		}
	}
}

func BenchmarkF1StrictVsLoose(b *testing.B)       { benchResult(b, bench.F1, 2) }
func BenchmarkT1SharingStudy(b *testing.B)        { benchResult(b, bench.T1, 4) }
func BenchmarkE1Traffic(b *testing.B)             { benchResult(b, bench.E1, 4) }
func BenchmarkE2MatmulResult(b *testing.B)        { benchResult(b, bench.E2, 4) }
func BenchmarkE3ReplicationVsRemote(b *testing.B) { benchResult(b, bench.E3, 4) }
func BenchmarkE4InvalidateVsRefresh(b *testing.B) { benchResult(b, bench.E4, 4) }
func BenchmarkE5Migratory(b *testing.B)           { benchResult(b, bench.E5, 3) }
func BenchmarkE6ProducerConsumer(b *testing.B)    { benchResult(b, bench.E6, 3) }
func BenchmarkE7DUQCombining(b *testing.B)        { benchResult(b, bench.E7, 2) }
func BenchmarkE8LockProxies(b *testing.B)         { benchResult(b, bench.E8, 2) }
func BenchmarkE9FalseSharing(b *testing.B)        { benchResult(b, bench.E9, 4) }

// Per-application benchmarks over both systems: the raw material of
// the E1 table, reported as msgs/op for direct comparison.

func benchApp(b *testing.B, run func(sys DSM) any) {
	b.Run("munin", func(b *testing.B) {
		var msgs int64
		for i := 0; i < b.N; i++ {
			sys, err := New(Config{Nodes: 4})
			if err != nil {
				b.Fatal(err)
			}
			run(sys)
			msgs = sys.Messages()
			sys.Close()
		}
		b.ReportMetric(float64(msgs), "msgs/op")
	})
	b.Run("ivy", func(b *testing.B) {
		var msgs int64
		for i := 0; i < b.N; i++ {
			sys, err := NewIvy(IvyConfig{Nodes: 4})
			if err != nil {
				b.Fatal(err)
			}
			run(sys)
			msgs = sys.Messages()
			sys.Close()
		}
		b.ReportMetric(float64(msgs), "msgs/op")
	})
}

func BenchmarkAppMatMul(b *testing.B) {
	benchApp(b, func(sys DSM) any { return apps.MatMul{N: 32, Threads: 4, Seed: 1}.Run(sys) })
}

func BenchmarkAppGauss(b *testing.B) {
	benchApp(b, func(sys DSM) any { return apps.Gauss{N: 24, Threads: 4, Seed: 2}.Run(sys) })
}

func BenchmarkAppFFT(b *testing.B) {
	benchApp(b, func(sys DSM) any { return apps.FFT{N: 128, Threads: 4, Seed: 3}.Run(sys) })
}

func BenchmarkAppQSort(b *testing.B) {
	benchApp(b, func(sys DSM) any { return apps.QSort{N: 512, Threads: 4, Seed: 4}.Run(sys) })
}

func BenchmarkAppTSP(b *testing.B) {
	benchApp(b, func(sys DSM) any { return apps.TSP{Cities: 8, Threads: 4, Seed: 5}.Run(sys) })
}

func BenchmarkAppLife(b *testing.B) {
	benchApp(b, func(sys DSM) any {
		return apps.Life{Rows: 32, Cols: 24, Generations: 6, Threads: 4, Seed: 6}.Run(sys)
	})
}
