// MatMul: the paper's §3.2 example. The input matrices are write-once
// (replicated on demand); the result matrix is a result object whose
// buffered rows are combined by the delayed update queue and propagated
// once to the collector — instead of bouncing between machines under
// strict coherence. Run the same workload over the Ivy baseline to see
// the difference.
package main

import (
	"fmt"

	"munin"
	"munin/internal/apps"
)

func main() {
	work := apps.MatMul{N: 64, Threads: 8, Seed: 3}

	sys, err := munin.New(munin.Config{Nodes: 4})
	if err != nil {
		panic(err)
	}
	sum := work.Run(sys)
	mm, mb := sys.Messages(), sys.Bytes()
	sys.Close()

	ivy, err := munin.NewIvy(munin.IvyConfig{Nodes: 4})
	if err != nil {
		panic(err)
	}
	sumIvy := work.Run(ivy)
	im, ib := ivy.Messages(), ivy.Bytes()
	ivy.Close()

	fmt.Printf("checksum: munin=%.3f ivy=%.3f sequential=%.3f\n", sum, sumIvy, work.Sequential())
	fmt.Printf("munin: %6d msgs %8d bytes\n", mm, mb)
	fmt.Printf("ivy:   %6d msgs %8d bytes\n", im, ib)
	fmt.Printf("ivy/munin message ratio: %.1fx\n", float64(im)/float64(mm))
}
