// TSP: branch-and-bound traveling salesman with a central work queue —
// the paper's representative graph problem. The queue and the best
// bound are migratory objects: their bytes travel inside the lock
// transfer messages, so entering a critical section costs no extra
// coherence traffic (§3.3.3).
package main

import (
	"fmt"

	"munin"
	"munin/internal/apps"
)

func main() {
	sys, err := munin.New(munin.Config{Nodes: 4})
	if err != nil {
		panic(err)
	}
	defer sys.Close()

	problem := apps.TSP{Cities: 9, Threads: 8, Seed: 7}
	best := problem.Run(sys)

	fmt.Printf("optimal %d-city tour cost: %d\n", problem.Cities, best)
	fmt.Printf("exhaustive check: %d\n", problem.Sequential())
	fmt.Printf("traffic: %d messages, %d bytes\n", sys.Messages(), sys.Bytes())
}
