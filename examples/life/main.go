// Life: the paper's nearest-neighbours workload over the public API.
// Band interiors are private objects; boundary rows are
// producer-consumer objects pushed eagerly to the neighbouring band at
// each barrier — "communication between processors only occurs at
// submatrix boundaries".
package main

import (
	"fmt"

	"munin"
	"munin/internal/apps"
)

func main() {
	sys, err := munin.New(munin.Config{Nodes: 4})
	if err != nil {
		panic(err)
	}
	defer sys.Close()

	game := apps.Life{Rows: 48, Cols: 32, Generations: 10, Threads: 4, Seed: 2026}
	alive := game.Run(sys)

	fmt.Printf("after %d generations on a %dx%d torusless grid: %d live cells\n",
		game.Generations, game.Rows, game.Cols, alive)
	fmt.Printf("sequential check: %d live cells\n", game.Sequential())
	fmt.Printf("traffic: %d messages, %d bytes\n", sys.Messages(), sys.Bytes())
}
