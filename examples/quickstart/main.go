// Quickstart: a shared counter and a write-once table on a simulated
// 4-node distributed-memory machine, programmed exactly like a
// shared-memory multiprocessor — the paper's promise.
package main

import (
	"fmt"

	"munin"
)

func main() {
	sys, err := munin.New(munin.Config{Nodes: 4})
	if err != nil {
		panic(err)
	}
	defer sys.Close()

	// A counter with no special annotation uses the Ivy-like default
	// protocol; the lock gives threads exclusive access.
	counter := sys.Alloc("counter", 8, munin.Conventional, munin.DefaultOptions(), nil)
	lock := sys.NewLock()

	// A lookup table written at initialization and then only read:
	// write-once, replicated on demand, no coherence traffic after the
	// first fault on each node.
	table := make([]byte, 256)
	for i := range table {
		table[i] = byte(i * i)
	}
	squares := sys.Alloc("squares", len(table), munin.WriteOnce, munin.DefaultOptions(), table)

	bar := sys.NewBarrier()
	const threads = 8

	sys.Run(threads, func(c munin.Ctx) {
		// Each thread bumps the shared counter under the lock...
		c.Acquire(lock)
		munin.WriteU64(c, counter, 0, munin.ReadU64(c, counter, 0)+1)
		c.Release(lock)
		c.Barrier(bar, threads)

		// ...and reads the replicated table locally.
		buf := make([]byte, 1)
		c.Read(squares, c.ThreadID()*2, buf)
		if c.ThreadID() == 0 {
			final := munin.ReadU64(c, counter, 0)
			fmt.Printf("counter = %d (want %d)\n", final, threads)
		}
	})

	fmt.Printf("traffic: %d messages, %d bytes\n", sys.Messages(), sys.Bytes())
}
