// Quickstart: a shared counter and a write-once table, programmed
// exactly like a shared-memory multiprocessor — the paper's promise.
//
// The SAME program runs on two machine shapes, chosen by flags alone:
//
//	# in-process: a simulated 4-node distributed-memory machine
//	go run ./examples/quickstart
//
//	# multi-process: one SPMD member per process, over real TCP
//	go run ./examples/quickstart -node 0 -peers "0=127.0.0.1:7000,1=127.0.0.1:7001"
//	go run ./examples/quickstart -node 1 -peers "0=127.0.0.1:7000,1=127.0.0.1:7001"
//
// In the multi-process form every process executes this identical
// program; each runs only its own share of the 8 worker threads, while
// the lock, the barrier and the shared objects span the processes.
// Nothing below the flag parsing knows which shape it is running on.
package main

import (
	"flag"
	"fmt"
	"os"

	"munin"
)

func main() {
	nodes := flag.Int("nodes", 4, "in-process mode: number of simulated processors")
	node := flag.Int("node", -1, "multi-process mode: this process's node ID")
	peers := flag.String("peers", "", `multi-process mode: topology as "0=host:port,1=host:port,..."`)
	listen := flag.String("listen", "", "multi-process mode: override this node's bind address")
	flag.Parse()

	cfg := munin.Config{Nodes: *nodes}
	if *peers != "" {
		if *node < 0 {
			fmt.Fprintln(os.Stderr, "quickstart: -peers requires -node")
			os.Exit(2)
		}
		topo, err := munin.ParsePeers(*peers, munin.NodeID(*node))
		if err != nil {
			fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
			os.Exit(2)
		}
		if *listen != "" {
			topo.Peers[topo.Self] = *listen
		}
		cfg = munin.Config{Topology: &topo}
	}

	sys, err := munin.New(cfg)
	if err != nil {
		panic(err)
	}
	defer sys.Close()

	// A counter with no special annotation uses the Ivy-like default
	// protocol; the lock gives threads exclusive access.
	counter := sys.Alloc("counter", 8, munin.Conventional, munin.DefaultOptions(), nil)
	lock := sys.NewLock()

	// A lookup table written at initialization and then only read:
	// write-once, replicated on demand, no coherence traffic after the
	// first fault on each node.
	table := make([]byte, 256)
	for i := range table {
		table[i] = byte(i * i)
	}
	squares := sys.Alloc("squares", len(table), munin.WriteOnce, munin.DefaultOptions(), table)

	bar := sys.NewBarrier()
	const threads = 8

	sys.Run(threads, func(c munin.Ctx) {
		// Each thread bumps the shared counter under the lock...
		c.Acquire(lock)
		munin.WriteU64(c, counter, 0, munin.ReadU64(c, counter, 0)+1)
		c.Release(lock)
		c.Barrier(bar, threads)

		// ...and reads the replicated table locally.
		buf := make([]byte, 1)
		c.Read(squares, c.ThreadID()*2, buf)
		if c.ThreadID() == 0 {
			final := munin.ReadU64(c, counter, 0)
			fmt.Printf("counter = %d (want %d)\n", final, threads)
		}
	})

	fmt.Printf("traffic: %d messages, %d bytes\n", sys.Messages(), sys.Bytes())
}
