package munin

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
)

// Facade-level tests: the public API a downstream user sees.

func TestQuickstartShape(t *testing.T) {
	sys, err := New(Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	counter := sys.Alloc("counter", 8, Conventional, DefaultOptions(), nil)
	lock := sys.NewLock()
	sys.Run(8, func(c Ctx) {
		c.Acquire(lock)
		WriteU64(c, counter, 0, ReadU64(c, counter, 0)+1)
		c.Release(lock)
	})
	var got uint64
	sys.Run(1, func(c Ctx) { got = ReadU64(c, counter, 0) })
	if got != 8 {
		t.Fatalf("counter = %d, want 8", got)
	}
}

func TestAllAnnotationsUsableThroughFacade(t *testing.T) {
	sys, err := New(Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	lock := sys.NewLock()
	migOpts := DefaultOptions()
	migOpts.Lock = lock
	resOpts := DefaultOptions()
	resOpts.Home = 0

	regions := map[string]RegionID{
		"wo":   sys.Alloc("wo", 8, WriteOnce, DefaultOptions(), []byte{1, 2, 3, 4, 5, 6, 7, 8}),
		"wm":   sys.Alloc("wm", 8, WriteMany, DefaultOptions(), nil),
		"pc":   sys.Alloc("pc", 8, ProducerConsumer, DefaultOptions(), nil),
		"mig":  sys.Alloc("mig", 8, Migratory, migOpts, nil),
		"res":  sys.Alloc("res", 8, Result, resOpts, nil),
		"priv": sys.Alloc("priv", 8, Private, DefaultOptions(), nil),
		"rm":   sys.Alloc("rm", 8, ReadMostly, DefaultOptions(), nil),
		"grw":  sys.Alloc("grw", 8, GeneralRW, DefaultOptions(), nil),
		"conv": sys.Alloc("conv", 8, Conventional, DefaultOptions(), nil),
	}
	bar := sys.NewBarrier()
	var failures atomic.Int32
	sys.Run(3, func(c Ctx) {
		id := c.ThreadID()
		buf := make([]byte, 8)
		// Everyone reads the write-once table.
		c.Read(regions["wo"], 0, buf)
		if buf[0] != 1 {
			failures.Add(1)
		}
		// Write-many: disjoint bytes, visible after the barrier.
		c.Write(regions["wm"], id, []byte{byte(id + 1)})
		// Conventional + general-rw: last write wins, strict.
		WriteU64(c, regions["conv"], 0, uint64(id))
		WriteU64(c, regions["grw"], 0, uint64(id))
		// Read-mostly: remote load/store.
		c.Read(regions["rm"], 0, buf)
		// Private: local only.
		c.Write(regions["priv"], 0, []byte{byte(id)})
		// Migratory under its lock.
		c.Acquire(lock)
		WriteU64(c, regions["mig"], 0, ReadU64(c, regions["mig"], 0)+1)
		c.Release(lock)
		// Result slice.
		c.Write(regions["res"], id*2, []byte{byte(id), byte(id)})
		// Producer-consumer: thread 0 produces.
		if id == 0 {
			WriteU64(c, regions["pc"], 0, 99)
		}
		c.Barrier(bar, 3)
		if got := ReadU64(c, regions["pc"], 0); got != 99 {
			failures.Add(1)
		}
		for i := 0; i < 3; i++ {
			c.Read(regions["wm"], i, buf[:1])
			if buf[0] != byte(i+1) {
				failures.Add(1)
			}
		}
	})
	if failures.Load() != 0 {
		t.Fatalf("%d cross-annotation failures", failures.Load())
	}
	var mig uint64
	sys.Run(1, func(c Ctx) {
		c.Acquire(lock)
		mig = ReadU64(c, regions["mig"], 0)
		c.Release(lock)
	})
	if mig != 3 {
		t.Fatalf("migratory counter = %d, want 3", mig)
	}
}

func TestIvyFacade(t *testing.T) {
	sys, err := NewIvy(IvyConfig{Nodes: 2, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	r := sys.Alloc("x", 8, Conventional, DefaultOptions(), nil)
	sys.Run(2, func(c Ctx) {
		if c.ThreadID() == 0 {
			WriteU64(c, r, 0, 7)
		}
	})
	var got uint64
	sys.Run(1, func(c Ctx) { got = ReadU64(c, r, 0) })
	if got != 7 {
		t.Fatalf("ivy read = %d", got)
	}
}

func TestCostModelAccounting(t *testing.T) {
	sys, err := New(Config{Nodes: 2, Cost: DefaultCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	r := sys.Alloc("x", 8, Conventional, DefaultOptions(), nil)
	sys.Run(2, func(c Ctx) { WriteU64(c, r, 0, uint64(c.ThreadID())) })
	if sys.Stats().ModeledNetworkNs() <= 0 {
		t.Fatal("no modeled network time accumulated")
	}
}

// TestQuickstartShapeOverMesh: the identical quickstart program runs as
// two SPMD members of a multi-process cluster, selected by Config
// alone — the facade's "one program, any cluster" promise. (Both
// members live in this test process; they still cross real loopback
// sockets, exactly as two OS processes would.)
func TestQuickstartShapeOverMesh(t *testing.T) {
	addrs := make([]string, 2)
	lns := make([]net.Listener, 0, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	spec := "0=" + addrs[0] + ",1=" + addrs[1]

	program := func(self NodeID, got *uint64) error {
		topo, err := ParsePeers(spec, self)
		if err != nil {
			return err
		}
		sys, err := New(Config{Topology: &topo})
		if err != nil {
			return err
		}
		defer sys.Close()
		counter := sys.Alloc("counter", 8, Conventional, DefaultOptions(), nil)
		lock := sys.NewLock()
		bar := sys.NewBarrier()
		sys.Run(8, func(c Ctx) {
			c.Acquire(lock)
			WriteU64(c, counter, 0, ReadU64(c, counter, 0)+1)
			c.Release(lock)
			c.Barrier(bar, 8)
			if c.ThreadID() == 0 {
				*got = ReadU64(c, counter, 0)
			}
		})
		return nil
	}

	var wg sync.WaitGroup
	var got0 uint64
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sink uint64
			p := &sink
			if i == 0 {
				p = &got0 // thread 0 runs in member 0
			}
			errs[i] = program(NodeID(i), p)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
	if got0 != 8 {
		t.Fatalf("counter over the mesh = %d, want 8", got0)
	}
}
