module munin

go 1.24
