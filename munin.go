// Package munin is a from-scratch implementation of Munin, the
// distributed shared memory (DSM) system with type-specific memory
// coherence described in:
//
//	J.K. Bennett, J.B. Carter, W. Zwaenepoel.
//	"Munin: Distributed Shared Memory Based on Type-Specific Memory
//	Coherence". PPoPP 1990.
//
// Munin runs shared-memory programs on a distributed-memory machine by
// choosing a coherence protocol per shared object, driven by a semantic
// annotation the programmer supplies at allocation: write-once objects
// replicate; write-many objects buffer updates in a per-thread delayed
// update queue and ship combined diffs at synchronization points;
// migratory objects ride inside lock-transfer messages; producer-
// consumer objects are pushed eagerly to their consumers; result
// objects merge at a collector; and so on (see internal/protocol).
//
// The distributed machine is simulated: nodes share nothing and
// communicate only through counted, serialized messages, so the traffic
// numbers the benchmarks report mean what they would on real hardware
// of the paper's era. An Ivy-style strict page-based DSM (the paper's
// principal point of comparison) and hand-coded message-passing
// baselines are included.
//
// # Quick start
//
//	sys, _ := munin.New(munin.Config{Nodes: 4})
//	defer sys.Close()
//	counter := sys.Alloc("counter", 8, munin.Conventional, munin.DefaultOptions(), nil)
//	lock := sys.NewLock()
//	sys.Run(8, func(c munin.Ctx) {
//	    c.Acquire(lock)
//	    munin.WriteU64(c, counter, 0, munin.ReadU64(c, counter, 0)+1)
//	    c.Release(lock)
//	})
package munin

import (
	"munin/internal/api"
	"munin/internal/core"
	"munin/internal/dlock"
	"munin/internal/ivy"
	"munin/internal/protocol"
	"munin/internal/transport"
)

// Config configures a Munin system. See core.Config.
type Config = core.Config

// System is a running Munin DSM instance.
type System = core.System

// IvyConfig configures the Ivy baseline system.
type IvyConfig = ivy.Config

// IvySystem is a running Ivy (strict page-based DSM) instance.
type IvySystem = ivy.System

// DSM is the interface both systems satisfy; application code written
// against it runs unchanged on either.
type DSM = api.System

// Ctx is a thread's handle to shared memory and synchronization.
type Ctx = api.Ctx

// RegionID names an allocated shared region.
type RegionID = api.RegionID

// Annotation is the per-object semantic hint selecting the coherence
// mechanism (the paper's type-specific declaration).
type Annotation = protocol.Annotation

// The access-pattern annotations (paper Section 2 / §3.3).
const (
	Conventional     = protocol.Conventional
	WriteOnce        = protocol.WriteOnce
	WriteMany        = protocol.WriteMany
	ProducerConsumer = protocol.ProducerConsumer
	Migratory        = protocol.Migratory
	Result           = protocol.Result
	Private          = protocol.Private
	ReadMostly       = protocol.ReadMostly
	GeneralRW        = protocol.GeneralRW
)

// Options tunes per-object protocol behaviour (home placement,
// associated lock for migratory data, refresh vs invalidate, dynamic
// adaptation, diff folding).
type Options = protocol.Options

// UpdateMode selects refresh vs invalidate for replicated objects.
type UpdateMode = protocol.UpdateMode

// Update modes (§3.4.2).
const (
	Refresh    = protocol.Refresh
	Invalidate = protocol.Invalidate
)

// Synchronization object identifiers.
type (
	LockID    = dlock.LockID
	BarrierID = dlock.BarrierID
	AtomicID  = dlock.AtomicID
)

// CostModel charges messages with modeled network time.
type CostModel = transport.CostModel

// New builds and starts a Munin system.
func New(cfg Config) (*System, error) { return core.New(cfg) }

// NewIvy builds and starts the Ivy baseline.
func NewIvy(cfg IvyConfig) (*IvySystem, error) { return ivy.New(cfg) }

// DefaultOptions returns zero-configuration per-object options.
func DefaultOptions() Options { return protocol.DefaultOptions() }

// DefaultCostModel approximates the paper's 10 Mbit/s Ethernet with
// 1 ms small-message latency.
func DefaultCostModel() CostModel { return transport.DefaultCostModel() }

// Typed access helpers (see internal/api).
var (
	ReadU64  = api.ReadU64
	WriteU64 = api.WriteU64
	ReadI64  = api.ReadI64
	WriteI64 = api.WriteI64
	ReadF64  = api.ReadF64
	WriteF64 = api.WriteF64
	ReadU32  = api.ReadU32
	WriteU32 = api.WriteU32
)
