// Package munin is a from-scratch implementation of Munin, the
// distributed shared memory (DSM) system with type-specific memory
// coherence described in:
//
//	J.K. Bennett, J.B. Carter, W. Zwaenepoel.
//	"Munin: Distributed Shared Memory Based on Type-Specific Memory
//	Coherence". PPoPP 1990.
//
// Munin runs shared-memory programs on a distributed-memory machine by
// choosing a coherence protocol per shared object, driven by a semantic
// annotation the programmer supplies at allocation: write-once objects
// replicate; write-many objects buffer updates in a per-thread delayed
// update queue and ship combined diffs at synchronization points;
// migratory objects ride inside lock-transfer messages; producer-
// consumer objects are pushed eagerly to their consumers; result
// objects merge at a collector; and so on (see internal/protocol).
//
// The distributed machine is simulated: nodes share nothing and
// communicate only through counted, serialized messages, so the traffic
// numbers the benchmarks report mean what they would on real hardware
// of the paper's era. An Ivy-style strict page-based DSM (the paper's
// principal point of comparison) and hand-coded message-passing
// baselines are included.
//
// # Quick start
//
//	sys, _ := munin.New(munin.Config{Nodes: 4})
//	defer sys.Close()
//	counter := sys.Alloc("counter", 8, munin.Conventional, munin.DefaultOptions(), nil)
//	lock := sys.NewLock()
//	sys.Run(8, func(c munin.Ctx) {
//	    c.Acquire(lock)
//	    munin.WriteU64(c, counter, 0, munin.ReadU64(c, counter, 0)+1)
//	    c.Release(lock)
//	})
//
// # One program, any cluster
//
// The same program also runs as one SPMD member of a multi-process
// cluster — the paper's actual machine shape — selected by configuration
// alone. Give every process the same program and the same topology
// (differing only in Self), and each process executes its own share of
// every Run's thread team while locks, barriers and shared objects span
// the processes over real TCP:
//
//	topo, _ := munin.ParsePeers("0=10.0.0.1:7000,1=10.0.0.2:7000", self)
//	sys, _ := munin.New(munin.Config{Topology: &topo})
//	// ...the rest of the program is IDENTICAL to the in-process form.
//
// Allocations need no coordinator: every member executes the same setup
// code, so Alloc/NewLock/NewBarrier/NewAtomic assign identical IDs from
// program order alone, and Run — which doubles as a cluster-wide
// barrier — exchanges a setup digest that fails fast with a typed
// *SetupDivergenceError if the members' setup code ever diverges.
package munin

import (
	"munin/internal/api"
	"munin/internal/core"
	"munin/internal/dlock"
	"munin/internal/ivy"
	"munin/internal/msg"
	"munin/internal/protocol"
	"munin/internal/transport"
)

// Config configures a Munin system. See core.Config.
type Config = core.Config

// System is a running Munin DSM instance.
type System = core.System

// IvyConfig configures the Ivy baseline system.
type IvyConfig = ivy.Config

// IvySystem is a running Ivy (strict page-based DSM) instance.
type IvySystem = ivy.System

// DSM is the interface both systems satisfy; application code written
// against it runs unchanged on either.
type DSM = api.System

// Ctx is a thread's handle to shared memory and synchronization.
type Ctx = api.Ctx

// RegionID names an allocated shared region.
type RegionID = api.RegionID

// Annotation is the per-object semantic hint selecting the coherence
// mechanism (the paper's type-specific declaration).
type Annotation = protocol.Annotation

// The access-pattern annotations (paper Section 2 / §3.3).
const (
	Conventional     = protocol.Conventional
	WriteOnce        = protocol.WriteOnce
	WriteMany        = protocol.WriteMany
	ProducerConsumer = protocol.ProducerConsumer
	Migratory        = protocol.Migratory
	Result           = protocol.Result
	Private          = protocol.Private
	ReadMostly       = protocol.ReadMostly
	GeneralRW        = protocol.GeneralRW
)

// Options tunes per-object protocol behaviour (home placement,
// associated lock for migratory data, refresh vs invalidate, dynamic
// adaptation, diff folding).
type Options = protocol.Options

// UpdateMode selects refresh vs invalidate for replicated objects.
type UpdateMode = protocol.UpdateMode

// Update modes (§3.4.2).
const (
	Refresh    = protocol.Refresh
	Invalidate = protocol.Invalidate
)

// Synchronization object identifiers.
type (
	LockID    = dlock.LockID
	BarrierID = dlock.BarrierID
	AtomicID  = dlock.AtomicID
)

// CostModel charges messages with modeled network time.
type CostModel = transport.CostModel

// NodeID identifies a node (processor) in the cluster.
type NodeID = msg.NodeID

// Topology describes a multi-process cluster: this process's node ID
// plus every node's listen address. Set Config.Topology to run one
// member of such a cluster instead of the in-process simulation.
type Topology = transport.Topology

// ReconnectPolicy is the mesh's opt-in reconnect-after-latch policy
// (Topology.Reconnect / Config.Reconnect).
type ReconnectPolicy = transport.ReconnectPolicy

// SetupDivergenceError is returned (RunErr) or panicked (Run) in every
// member of a mesh cluster whose processes did not execute identical
// setup code — the deterministic-allocation contract was broken.
type SetupDivergenceError = core.SetupDivergenceError

// ParsePeers builds a validated topology from the flag form
// "0=host:port,1=host:port,..." plus this process's node ID.
func ParsePeers(spec string, self NodeID) (Topology, error) { return transport.ParsePeers(spec, self) }

// LoadTopology reads and validates a topology JSON file:
// {"self": 1, "peers": {"0": "10.0.0.1:7000", "1": "10.0.0.2:7000"}}.
func LoadTopology(path string) (Topology, error) { return transport.LoadTopology(path) }

// New builds and starts a Munin system: the whole cluster in-process
// (Config.Nodes), or this process's SPMD member of a multi-process
// cluster (Config.Topology).
func New(cfg Config) (*System, error) { return core.New(cfg) }

// NewIvy builds and starts the Ivy baseline.
func NewIvy(cfg IvyConfig) (*IvySystem, error) { return ivy.New(cfg) }

// DefaultOptions returns zero-configuration per-object options.
func DefaultOptions() Options { return protocol.DefaultOptions() }

// DefaultCostModel approximates the paper's 10 Mbit/s Ethernet with
// 1 ms small-message latency.
func DefaultCostModel() CostModel { return transport.DefaultCostModel() }

// Typed access helpers (see internal/api).
var (
	ReadU64  = api.ReadU64
	WriteU64 = api.WriteU64
	ReadI64  = api.ReadI64
	WriteI64 = api.WriteI64
	ReadF64  = api.ReadF64
	WriteF64 = api.WriteF64
	ReadU32  = api.ReadU32
	WriteU32 = api.WriteU32
)
