// Command perfdiff guards the perf trajectory: it diffs the two newest
// BENCH_<n>.json files (the archived `munin-bench -json` metrics each
// PR commits) and fails when a headline metric regressed by more than
// the threshold. CI runs it so a PR that silently makes flushes
// chattier or the wire path less coalesced turns red instead of
// landing.
//
// Headline metrics are lower-is-better message/write counts:
//
//	E1   munin.<app>.msgs      protocol traffic per application
//	E10  batched.<k>           batched flush messages per sync
//	E11  batched.writes.<k>    coalesced wire writes per sync over TCP
//	E12  batched.writes.<k>    writer-side wire writes per sync across
//	                           the two-process mesh
//	E14  batched.writes.<k>    same, for the public-API SPMD program
//	                           (core.System over Config.Topology)
//	E15  flush.wire.ns         steady-state send-wire-path latency
//	     flush.ns.<k>          end-to-end protocol flush latency (TCP)
//	E16  lease.write.ns.<k>    lease-engine write latency at K readers
//	     copyset.write.ns.<k>  directory-baseline write latency
//	E17  rejoin.first_read_ms  crash-recovery rejoin-to-first-valid-read
//	     rejoin.reprime_msgs   wire messages the rejoin consumed
//
// Count metrics (messages, wire writes) are deterministic, so they are
// gated tightly at the default 20% threshold. Time metrics (.ns / _ms)
// are wall-clock measurements on shared runners and jitter with machine
// load, so they get the looser -time-threshold (default 50%) — wide
// enough to absorb scheduler noise, tight enough to catch an
// algorithmic blowup. Sub-microsecond .ns metrics are below scheduler
// noise entirely (one context switch is ~10us); they are reported for
// the record but not gated.
//
// E15's flush.allocs metric is gated absolutely, not relatively: the
// newest trajectory file must report exactly zero steady-state heap
// allocations on the send wire path. A ratio check cannot express
// "0 must stay 0", so the allocation gate is separate from the
// threshold machinery.
//
// E16's lease.msgs_per_write.<k> metrics are likewise gated absolutely:
// the lease engine's whole point is that writer-side messages per write
// to a read-mostly object do not grow with the number of readers, so
// the newest file's values must all be equal across K (flat). The
// directory baseline is linear by design and is not message-gated.
//
// E17's correctness metrics are gated absolutely as well: every
// digest.match.<crash point> in the newest file must be exactly 1
// (post-rejoin memory byte-identical to an uninterrupted run), and
// crash.points must stay >= 4 (the sweep keeps covering the named
// protocol steps). A ratio check cannot express either.
//
// Usage: perfdiff [-dir .] [-threshold 0.20] [-time-threshold 0.50]
//
// With fewer than two trajectory files there is nothing to diff and
// the command succeeds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"munin/internal/perfgate"
)

type benchResult struct {
	ID      string             `json:"id"`
	Metrics map[string]float64 `json:"metrics"`
}

// load reads one trajectory file into exp -> metric -> value.
func load(path string) (map[string]map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []benchResult
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]map[string]float64, len(results))
	for _, r := range results {
		out[r.ID] = r.Metrics
	}
	return out, nil
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// newestTwo returns the paths of the two highest-numbered BENCH files,
// older first.
func newestTwo(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type numbered struct {
		n    int
		path string
	}
	var files []numbered
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		files = append(files, numbered{n: n, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].n < files[j].n })
	if len(files) < 2 {
		return nil, nil
	}
	return []string{files[len(files)-2].path, files[len(files)-1].path}, nil
}

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_<n>.json files")
	threshold := flag.Float64("threshold", 0.20, "allowed fractional regression in count metrics")
	timeThreshold := flag.Float64("time-threshold", 0.50, "allowed fractional regression in wall-clock metrics (.ns / _ms)")
	flag.Parse()

	pair, err := newestTwo(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfdiff: %v\n", err)
		os.Exit(1)
	}
	if pair == nil {
		fmt.Println("perfdiff: fewer than two BENCH_<n>.json files; nothing to diff")
		return
	}
	old, err := load(pair[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfdiff: %v\n", err)
		os.Exit(1)
	}
	cur, err := load(pair[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfdiff: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("perfdiff: %s -> %s (threshold %.0f%%, time threshold %.0f%%)\n",
		pair[0], pair[1], *threshold*100, *timeThreshold*100)
	regressions := 0
	compared := 0
	for _, exp := range perfgate.Experiments() {
		oldM, curM := old[exp], cur[exp]
		if oldM == nil {
			continue // experiment newer than the older trajectory file
		}
		keys := make([]string, 0, len(oldM))
		for k := range oldM {
			if perfgate.IsHeadline(exp, k) {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			was := oldM[k]
			if was <= 0 {
				continue
			}
			// A guarded metric that vanishes from the newer file is a
			// gate failure, not a skip: silently dropping or renaming a
			// headline metric must not disable the regression check.
			now, ok := curM[k]
			if !ok {
				regressions++
				fmt.Printf("  MISSING    %s %s: present in %s, absent in %s\n", exp, k, pair[0], pair[1])
				continue
			}
			compared++
			change := (now - was) / was
			limit := *threshold
			if perfgate.TimeBased(k) {
				if strings.Contains(k, ".ns") && was < 1000 {
					// Sub-microsecond wall-clock: below scheduler noise on a
					// shared runner (one context switch is ~10us). Report it
					// so the trajectory stays on record, but do not gate.
					fmt.Printf("  noise      %s %s: %.1f -> %.1f (%+.1f%%, sub-microsecond; not gated)\n", exp, k, was, now, change*100)
					continue
				}
				limit = *timeThreshold
			}
			if change > limit {
				regressions++
				fmt.Printf("  REGRESSION %s %s: %.1f -> %.1f (%+.1f%%)\n", exp, k, was, now, change*100)
			} else if change != 0 {
				fmt.Printf("  ok         %s %s: %.1f -> %.1f (%+.1f%%)\n", exp, k, was, now, change*100)
			}
		}
	}
	// The allocation gate is absolute: the newest file must report a
	// zero-allocation steady-state send wire path. The relative loop
	// above cannot enforce it — a 0 baseline is skipped as un-ratioable,
	// so 0 -> 1 would land silently.
	if curE15, ok := cur["E15"]; ok {
		compared++
		if allocs, ok := curE15[perfgate.MetricFlushAllocs]; !ok {
			regressions++
			fmt.Printf("  MISSING    E15 flush.allocs: absent in %s\n", pair[1])
		} else if allocs != 0 {
			regressions++
			fmt.Printf("  REGRESSION E15 flush.allocs: %g, want 0 (steady-state flush must not allocate)\n", allocs)
		} else {
			fmt.Printf("  ok         E15 flush.allocs: 0\n")
		}
	} else if old["E15"] != nil {
		regressions++
		fmt.Printf("  MISSING    E15: present in %s, absent in %s\n", pair[0], pair[1])
	}
	// The fan-out gate is absolute too: lease-engine messages per write
	// must be FLAT across reader counts in the newest file. Asserting
	// flatness (max == min) rather than a ratio means 0 -> 0.5 at one K
	// fails even though no single value "regressed" relatively.
	if curE16, ok := cur["E16"]; ok {
		var vals []float64
		keys := make([]string, 0, len(curE16))
		for k := range curE16 {
			if strings.HasPrefix(k, perfgate.LeaseMsgsPerWritePrefix) {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			vals = append(vals, curE16[k])
		}
		compared++
		if len(vals) < 2 {
			regressions++
			fmt.Printf("  MISSING    E16 lease.msgs_per_write.<k>: %d reader counts in %s, want >= 2 to assert flatness\n", len(vals), pair[1])
		} else {
			lo, hi := vals[0], vals[0]
			for _, v := range vals {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi > lo {
				regressions++
				fmt.Printf("  REGRESSION E16 lease.msgs_per_write: %g..%g across reader counts, want flat (writer fan-out must not grow with readers)\n", lo, hi)
			} else {
				fmt.Printf("  ok         E16 lease.msgs_per_write: flat at %g across %d reader counts\n", lo, len(vals))
			}
		}
	} else if old["E16"] != nil {
		regressions++
		fmt.Printf("  MISSING    E16: present in %s, absent in %s\n", pair[0], pair[1])
	}
	// The recovery gate is absolute: every crash point in the newest
	// file must have converged to byte-identical memory, and the sweep
	// must keep covering at least four named protocol steps.
	if curE17, ok := cur["E17"]; ok {
		keys := make([]string, 0, len(curE17))
		for k := range curE17 {
			if strings.HasPrefix(k, perfgate.DigestMatchPrefix) {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		compared++
		bad := 0
		for _, k := range keys {
			if curE17[k] != 1 {
				bad++
				regressions++
				fmt.Printf("  REGRESSION E17 %s: %g, want 1 (post-rejoin memory must be byte-identical)\n", k, curE17[k])
			}
		}
		if len(keys) == 0 {
			regressions++
			fmt.Printf("  MISSING    E17 digest.match.<crash point>: absent in %s\n", pair[1])
		} else if bad == 0 {
			fmt.Printf("  ok         E17 digest.match: 1 across %d crash points\n", len(keys))
		}
		if pts := curE17[perfgate.MetricCrashPoints]; pts < perfgate.MinCrashPoints {
			regressions++
			fmt.Printf("  REGRESSION E17 crash.points: %g, want >= 4 named protocol steps\n", pts)
		}
	} else if old["E17"] != nil {
		regressions++
		fmt.Printf("  MISSING    E17: present in %s, absent in %s\n", pair[0], pair[1])
	}
	fmt.Printf("perfdiff: %d headline metrics compared, %d regressed\n", compared, regressions)
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "perfdiff: no comparable headline metrics — trajectory files malformed?")
		os.Exit(1)
	}
	if regressions > 0 {
		os.Exit(1)
	}
}
