// Command munin-study reruns the paper's Section 2 sharing study: it
// traces every shared-memory access the six study programs make and
// classifies each object into the paper's access-pattern categories.
//
// Usage:
//
//	munin-study [-nodes N]
package main

import (
	"flag"
	"fmt"

	"munin/internal/api"
	"munin/internal/apps"
	"munin/internal/core"
	"munin/internal/study"
)

func main() {
	nodes := flag.Int("nodes", 4, "number of simulated processors")
	flag.Parse()

	type prog struct {
		name string
		run  func(sys api.System)
	}
	progs := []prog{
		{"matmul", func(s api.System) { apps.MatMul{N: 32, Threads: *nodes, Seed: 1}.Run(s) }},
		{"gauss", func(s api.System) { apps.Gauss{N: 24, Threads: *nodes, Seed: 2}.Run(s) }},
		{"fft", func(s api.System) { apps.FFT{N: 128, Threads: *nodes, Seed: 3}.Run(s) }},
		{"qsort", func(s api.System) { apps.QSort{N: 512, Threads: *nodes, Seed: 4}.Run(s) }},
		{"tsp", func(s api.System) { apps.TSP{Cities: 8, Threads: *nodes, Seed: 5}.Run(s) }},
		{"life", func(s api.System) { apps.Life{Rows: 32, Cols: 24, Generations: 6, Threads: *nodes, Seed: 6}.Run(s) }},
	}

	for _, p := range progs {
		inner, err := core.New(core.Config{Nodes: *nodes})
		if err != nil {
			panic(err)
		}
		tr := study.NewTracer(inner)
		p.run(tr)
		rep := tr.Classify(p.name)
		tr.Close()

		fmt.Println(rep.Table())
		fmt.Printf("steady-state read fraction: %.1f%%   general-rw share: %.2f%%   sync/data gap: %.1fx\n\n",
			100*rep.ReadFraction(), 100*rep.GeneralRWShare(),
			safeRatio(rep.MeanSyncGap, rep.MeanDataGap))
	}
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
