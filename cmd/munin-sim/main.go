// Command munin-sim runs one study application over a chosen system
// (munin, ivy, or the hand-coded message-passing baseline where
// available) and prints the traffic bill.
//
// Usage:
//
//	munin-sim -app life -system munin -nodes 4
package main

import (
	"flag"
	"fmt"
	"os"

	"munin/internal/api"
	"munin/internal/apps"
	"munin/internal/core"
	"munin/internal/ivy"
	"munin/internal/mp"
	"munin/internal/transport"
)

func main() {
	app := flag.String("app", "matmul", "application: matmul gauss fft qsort tsp life")
	system := flag.String("system", "munin", "system: munin ivy mp")
	nodes := flag.Int("nodes", 4, "number of simulated processors")
	size := flag.Int("size", 0, "problem size override (0 = default)")
	page := flag.Int("page", 1024, "ivy page size")
	flag.Parse()

	cost := transport.DefaultCostModel()

	if *system == "mp" {
		h, err := mp.NewHarness(*nodes, cost)
		if err != nil {
			fail(err.Error())
		}
		defer h.Close()
		var result any
		switch *app {
		case "matmul":
			m := apps.MatMul{N: dflt(*size, 32), Threads: *nodes, Seed: 1}
			result = h.MatMul(m.N, m.ElemA, m.ElemB)
		case "gauss":
			g := apps.Gauss{N: dflt(*size, 24), Threads: *nodes, Seed: 2}
			result = h.Gauss(g.N, g.Elem)
		case "life":
			l := apps.Life{Rows: dflt(*size, 32), Cols: 24, Generations: 6, Threads: *nodes, Seed: 6}
			result = h.Life(l.Rows, l.Cols, l.Generations, l.AliveAtInit)
		case "fft":
			f := apps.FFT{N: dflt(*size, 128), Threads: *nodes, Seed: 3}
			result = h.FFT(f.N, f.Sample)
		case "qsort":
			q := apps.QSort{N: dflt(*size, 512), Threads: *nodes, Seed: 4}
			result = h.QSort(q.N, q.Value)
		case "tsp":
			t := apps.TSP{Cities: dflt(*size, 8), Threads: *nodes, Seed: 5}
			result = h.TSP(t.Cities, 3, t.Dist)
		default:
			fail("unknown app " + *app)
		}
		fmt.Printf("app=%s system=mp nodes=%d result=%v\n", *app, *nodes, result)
		fmt.Printf("messages=%d bytes=%d\n", h.Messages(), h.Bytes())
		return
	}

	var sys api.System
	switch *system {
	case "munin":
		s, err := core.New(core.Config{Nodes: *nodes, Cost: cost})
		if err != nil {
			fail(err.Error())
		}
		sys = s
	case "ivy":
		s, err := ivy.New(ivy.Config{Nodes: *nodes, PageSize: *page, Cost: cost})
		if err != nil {
			fail(err.Error())
		}
		sys = s
	default:
		fail("unknown system " + *system)
	}
	defer sys.Close()

	var result any
	switch *app {
	case "matmul":
		result = apps.MatMul{N: dflt(*size, 32), Threads: *nodes, Seed: 1}.Run(sys)
	case "gauss":
		result = apps.Gauss{N: dflt(*size, 24), Threads: *nodes, Seed: 2}.Run(sys)
	case "fft":
		result = apps.FFT{N: dflt(*size, 128), Threads: *nodes, Seed: 3}.Run(sys)
	case "qsort":
		result = apps.QSort{N: dflt(*size, 512), Threads: *nodes, Seed: 4}.Run(sys)
	case "tsp":
		result = apps.TSP{Cities: dflt(*size, 8), Threads: *nodes, Seed: 5}.Run(sys)
	case "life":
		result = apps.Life{Rows: dflt(*size, 32), Cols: 24, Generations: 6, Threads: *nodes, Seed: 6}.Run(sys)
	default:
		fail("unknown app " + *app)
	}
	fmt.Printf("app=%s system=%s nodes=%d result=%v\n", *app, *system, *nodes, result)
	fmt.Printf("messages=%d bytes=%d\n", sys.Messages(), sys.Bytes())
}

func dflt(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(2)
}
