// Command muninvet runs the repo's static-analysis suite: seven
// analyzers that enforce invariants the type system cannot —
//
//	pooledbuf    bufpool single-owner discipline
//	lockhold     no blocking calls under data mutexes; sorted fence order
//	counterreg   counter names come from the internal/stats registry
//	failpointref failpoint names resolve against failpoint.Names()
//	lockorder    whole-program lock acquisition-order graph is acyclic
//	msgdispatch  every message kind dispatched exactly once; handlers reply on every path
//	errflow      sentinel errors matched with errors.Is/As; rendezvous errors not discarded
//
// Usage:
//
//	go run ./cmd/muninvet ./...
//	go run ./cmd/muninvet -json ./...           # machine-readable findings
//	go run ./cmd/muninvet -artifacts out ./...  # write lockorder.dot etc. to out/
//
// Exits 1 if any analyzer reports a diagnostic, 2 on driver errors.
// CI runs it as a blocking step next to go vet and uploads the
// lock-order DOT graph as a build artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"munin/internal/analysis/counterreg"
	"munin/internal/analysis/errflow"
	"munin/internal/analysis/failpointref"
	"munin/internal/analysis/framework"
	"munin/internal/analysis/lockhold"
	"munin/internal/analysis/lockorder"
	"munin/internal/analysis/msgdispatch"
	"munin/internal/analysis/pooledbuf"
)

var analyzers = []*framework.Analyzer{
	pooledbuf.Analyzer,
	lockhold.Analyzer,
	counterreg.Analyzer,
	failpointref.Analyzer,
	lockorder.Analyzer,
	msgdispatch.Analyzer,
	errflow.Analyzer,
}

// jsonDiag is the -json wire shape for one finding, mirroring the
// x/tools -json vet output closely enough for editor integrations.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	artifactsDir := flag.String("artifacts", "", "directory to write analyzer artifacts (e.g. lockorder.dot)")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := analyzers
	if *only != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "muninvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "muninvet: %v\n", err)
		os.Exit(2)
	}
	res, err := framework.Run(wd, patterns, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "muninvet: %v\n", err)
		os.Exit(2)
	}

	if *artifactsDir != "" {
		if err := os.MkdirAll(*artifactsDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "muninvet: %v\n", err)
			os.Exit(2)
		}
		for name, data := range res.Artifacts {
			if err := os.WriteFile(filepath.Join(*artifactsDir, name), data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "muninvet: %v\n", err)
				os.Exit(2)
			}
		}
	}

	if *jsonOut {
		out := make([]jsonDiag, 0, len(res.Diags))
		for _, d := range res.Diags {
			p := res.Position(d)
			out = append(out, jsonDiag{
				File: p.Filename, Line: p.Line, Column: p.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "muninvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Diags {
			fmt.Printf("%s: %s: %s\n", res.Position(d), d.Analyzer, d.Message)
		}
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "muninvet: %d finding(s)\n", len(res.Diags))
		os.Exit(1)
	}
}
