// Command muninvet runs the repo's static-analysis suite: four
// analyzers that enforce invariants the type system cannot —
//
//	pooledbuf    bufpool single-owner discipline
//	lockhold     no blocking calls under data mutexes; sorted fence order
//	counterreg   counter names come from the internal/stats registry
//	failpointref failpoint names resolve against failpoint.Names()
//
// Usage:
//
//	go run ./cmd/muninvet ./...
//
// Exits 1 if any analyzer reports a diagnostic, 2 on driver errors.
// CI runs it as a blocking step next to go vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"munin/internal/analysis/counterreg"
	"munin/internal/analysis/failpointref"
	"munin/internal/analysis/framework"
	"munin/internal/analysis/lockhold"
	"munin/internal/analysis/pooledbuf"
)

var analyzers = []*framework.Analyzer{
	pooledbuf.Analyzer,
	lockhold.Analyzer,
	counterreg.Analyzer,
	failpointref.Analyzer,
}

func main() {
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := analyzers
	if *only != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "muninvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "muninvet: %v\n", err)
		os.Exit(2)
	}
	res, err := framework.Run(wd, patterns, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "muninvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range res.Diags {
		fmt.Printf("%s: %s: %s\n", res.Position(d), d.Analyzer, d.Message)
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "muninvet: %d finding(s)\n", len(res.Diags))
		os.Exit(1)
	}
}
