// Command munin-bench regenerates the paper's figures, tables and
// quantitative claims (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	munin-bench [-nodes N] [-exp F1|T1|E1|...|E11|all] [-json path]
//
// With -json, every experiment's headline metrics are also written to
// the given file as a JSON array, so successive runs can be archived as
// a perf trajectory (BENCH_*.json) and diffed across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"munin/internal/bench"
)

// jsonResult is the serialized form of one experiment's metrics.
type jsonResult struct {
	ID      string             `json:"id"`
	Metrics map[string]float64 `json:"metrics"`
}

func writeJSON(path string, results []*bench.Result) error {
	out := make([]jsonResult, 0, len(results))
	for _, r := range results {
		out = append(out, jsonResult{ID: r.ID, Metrics: r.Metrics})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	nodes := flag.Int("nodes", 4, "number of simulated processors")
	exp := flag.String("exp", "all", "experiment to run (F1, T1, E1..E11, or all)")
	jsonPath := flag.String("json", "", "write experiment metrics to this file as JSON")
	flag.Parse()

	runners := map[string]func(int) *bench.Result{
		"F1": bench.F1, "T1": bench.T1, "E1": bench.E1, "E2": bench.E2,
		"E3": bench.E3, "E4": bench.E4, "E5": bench.E5, "E6": bench.E6,
		"E7": bench.E7, "E8": bench.E8, "E9": bench.E9, "E10": bench.E10,
		"E11": bench.E11,
	}

	var results []*bench.Result
	if strings.EqualFold(*exp, "all") {
		results = bench.All(*nodes)
	} else {
		run, ok := runners[strings.ToUpper(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose F1, T1, E1..E11, or all\n", *exp)
			os.Exit(2)
		}
		results = []*bench.Result{run(*nodes)}
	}
	for _, r := range results {
		fmt.Println(r)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, results); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}
