// Command munin-bench regenerates the paper's figures, tables and
// quantitative claims (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	munin-bench [-nodes N] [-exp F1|T1|E1|...|E17|all] [-json path]
//
// With -json, every experiment's headline metrics are also written to
// the given file as a JSON array, so successive runs can be archived as
// a perf trajectory (BENCH_*.json) and diffed across PRs
// (cmd/perfdiff).
//
// # Multi-process mode
//
// With -peers (or -topology), munin-bench runs ONE member of a real
// two-process cluster instead of simulating everything in-process —
// node 0 is the home/server, any other node is the E11 flush writer:
//
//	# terminal 1 — the home
//	munin-bench -node 0 -peers "0=127.0.0.1:7000,1=127.0.0.1:7001"
//	# terminal 2 — the writer (flushes K dirty objects, prints metrics)
//	munin-bench -node 1 -peers "0=127.0.0.1:7000,1=127.0.0.1:7001" -mesh-k 64
//
// -listen overrides this node's own bind address (handy for 0.0.0.0
// binds behind NAT), -topology loads the same map from a JSON file
// ({"self": 0, "peers": {"0": "host:port", ...}}), and -mesh-serial
// selects the legacy serial flush for comparison. Experiment E12
// automates exactly this pairing over 127.0.0.1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"munin/internal/bench"
	"munin/internal/msg"
	"munin/internal/transport"
)

// jsonResult is the serialized form of one experiment's metrics.
type jsonResult struct {
	ID      string             `json:"id"`
	Metrics map[string]float64 `json:"metrics"`
}

func writeJSON(path string, results []*bench.Result) error {
	out := make([]jsonResult, 0, len(results))
	for _, r := range results {
		out = append(out, jsonResult{ID: r.ID, Metrics: r.Metrics})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// meshMain runs one member of a multi-process cluster (see the package
// comment). Node 0 serves as the home; any other node runs the flush
// writer workload and prints its measurements.
func meshMain(topoPath, peersSpec, listen string, node, k int, serial bool) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "munin-bench: %v\n", err)
		os.Exit(1)
	}
	var topo transport.Topology
	var err error
	switch {
	case topoPath != "":
		topo, err = transport.LoadTopology(topoPath)
		if err == nil && node >= 0 {
			topo.Self = msg.NodeID(node)
		}
	case peersSpec != "":
		if node < 0 {
			fail(fmt.Errorf("-peers requires -node"))
		}
		topo, err = transport.ParsePeers(peersSpec, msg.NodeID(node))
	}
	if err != nil {
		fail(err)
	}
	if listen != "" {
		topo.Peers[topo.Self] = listen
	}
	if err := topo.Validate(); err != nil {
		fail(err)
	}
	if topo.Self == 0 {
		fmt.Printf("home: node 0 listening on %s, waiting for the writer\n", topo.Addr(0))
		if err := bench.RunMeshHome(topo, serial, os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	m, err := bench.RunMeshWriter(topo, k, serial)
	if err != nil {
		fail(err)
	}
	fmt.Printf("writer: node %d flushed %d dirty objects homed on node 0\n", topo.Self, m.K)
	fmt.Printf("  wire writes during flush: %d (messages: %d)\n", m.Writes, m.Msgs)
	fmt.Printf("  dials: %d  queue stalls: %d (%.3fms)  misrouted: %d\n",
		m.Dials, m.Stalls, float64(m.StallNs)/1e6, m.Misrouted)
	fmt.Printf("  done reply survived home shutdown: %v\n", m.DoneAcked)
}

func main() {
	if bench.MeshChildMain() {
		return
	}
	nodes := flag.Int("nodes", 4, "number of simulated processors")
	exp := flag.String("exp", "all", "experiment to run (F1, T1, E1..E17, or all)")
	jsonPath := flag.String("json", "", "write experiment metrics to this file as JSON")
	node := flag.Int("node", -1, "multi-process mode: this process's node ID")
	listen := flag.String("listen", "", "multi-process mode: override this node's bind address")
	peers := flag.String("peers", "", `multi-process mode: topology as "0=host:port,1=host:port,..."`)
	topoPath := flag.String("topology", "", "multi-process mode: topology JSON file")
	meshK := flag.Int("mesh-k", 64, "multi-process mode: dirty objects the writer flushes")
	meshSerial := flag.Bool("mesh-serial", false, "multi-process mode: use the legacy serial flush")
	flag.Parse()

	if *peers != "" || *topoPath != "" {
		meshMain(*topoPath, *peers, *listen, *node, *meshK, *meshSerial)
		return
	}

	runners := map[string]func(int) *bench.Result{
		"F1": bench.F1, "T1": bench.T1, "E1": bench.E1, "E2": bench.E2,
		"E3": bench.E3, "E4": bench.E4, "E5": bench.E5, "E6": bench.E6,
		"E7": bench.E7, "E8": bench.E8, "E9": bench.E9, "E10": bench.E10,
		"E11": bench.E11, "E12": bench.E12, "E13": bench.E13, "E14": bench.E14,
		"E15": bench.E15, "E16": bench.E16, "E17": bench.E17,
	}

	var results []*bench.Result
	if strings.EqualFold(*exp, "all") {
		results = bench.All(*nodes)
	} else {
		run, ok := runners[strings.ToUpper(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose F1, T1, E1..E17, or all\n", *exp)
			os.Exit(2)
		}
		results = []*bench.Result{run(*nodes)}
	}
	for _, r := range results {
		fmt.Println(r)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, results); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}
