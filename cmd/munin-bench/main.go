// Command munin-bench regenerates the paper's figures, tables and
// quantitative claims (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	munin-bench [-nodes N] [-exp F1|T1|E1|...|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"munin/internal/bench"
)

func main() {
	nodes := flag.Int("nodes", 4, "number of simulated processors")
	exp := flag.String("exp", "all", "experiment to run (F1, T1, E1..E9, or all)")
	flag.Parse()

	runners := map[string]func(int) *bench.Result{
		"F1": bench.F1, "T1": bench.T1, "E1": bench.E1, "E2": bench.E2,
		"E3": bench.E3, "E4": bench.E4, "E5": bench.E5, "E6": bench.E6,
		"E7": bench.E7, "E8": bench.E8, "E9": bench.E9,
	}

	if strings.EqualFold(*exp, "all") {
		for _, r := range bench.All(*nodes) {
			fmt.Println(r)
		}
		return
	}
	run, ok := runners[strings.ToUpper(*exp)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose F1, T1, E1..E9, or all\n", *exp)
		os.Exit(2)
	}
	fmt.Println(run(*nodes))
}
